//! Property tests for the content-addressed tool-execution cache: a
//! warm run that replays cached results must be *byte-identical* to
//! the cold run that produced them — same output data, same history
//! records (ids, entities, metadata, blob hashes, derivations) — with
//! only timings and the cache-hit marking allowed to differ. Distinct
//! inputs must never collide into a wrong hit, and the disk tier must
//! carry results across workspaces that share nothing but a cache
//! directory.

use hercules::cache::{CacheConfig, ContentCache, MemoryBudget};
use hercules::eda::{GateKind, Netlist, PlacementRules};
use hercules::history::{EntityInstance, Metadata};
use hercules::obs::Metrics;
use hercules::sim::{Clock, SimEnv};
use hercules::Session;
use proptest::prelude::*;

/// Builds a valid gate-level netlist from a generated gate-kind chain:
/// each entry appends one gate fed by the previous stage (and a second
/// primary input for the multi-input kinds). The canonical text form
/// is what gets recorded as the `EditedNetlist` payload.
fn netlist_bytes(kinds: &[u8]) -> Vec<u8> {
    let mut n = Netlist::new("gen");
    let a = n.add_port_in("a");
    let b = n.add_port_in("b");
    let mut prev = a;
    for (i, k) in kinds.iter().enumerate() {
        let kind = match k % 8 {
            0 => GateKind::Inv,
            1 => GateKind::Buf,
            2 => GateKind::And,
            3 => GateKind::Or,
            4 => GateKind::Nand,
            5 => GateKind::Nor,
            6 => GateKind::Xor,
            _ => GateKind::Xnor,
        };
        let out = n.add_net(&format!("n{i}"));
        match kind {
            GateKind::Inv | GateKind::Buf => n.add_gate(kind, &[prev], out),
            _ => n.add_gate(kind, &[prev, b], out),
        }
        prev = out;
    }
    let out_name = n.net_name(prev).to_owned();
    n.add_port_out(&out_name);
    n.to_bytes()
}

/// Serializes generated placement rules.
fn rules_bytes(row_width: i64, spacing: i64) -> Vec<u8> {
    PlacementRules { row_width, spacing }.to_bytes()
}

/// One full Layout run against a fresh session seeded with the given
/// netlist and placement-rules payloads, sharing only `cache` with
/// other runs. Returns `(runs, cache_hits, history records, layout
/// bytes)`.
fn run_layout(
    cache: ContentCache,
    netlist: &[u8],
    rules: &[u8],
) -> (usize, usize, Vec<EntityInstance>, Vec<u8>) {
    let mut session = Session::odyssey("prop");
    session.attach_content_cache(cache);
    let schema = session.schema().clone();
    let edited = schema.require("EditedNetlist").expect("known entity");
    let rules_entity = schema.require("PlacementRules").expect("known entity");
    session
        .db_mut()
        .record_primary(edited, Metadata::by("prop").named("gen-netlist"), netlist)
        .expect("records netlist");
    session
        .db_mut()
        .record_primary(rules_entity, Metadata::by("prop").named("gen-rules"), rules)
        .expect("records rules");

    let layout = session.start_from_goal("Layout").expect("starts");
    let created = session.expand(layout).expect("expands");
    let netlist_node = created
        .iter()
        .copied()
        .find(|&n| {
            session
                .flow()
                .expect("active flow")
                .entity_of(n)
                .ok()
                .map(|e| schema.entity(e).name() == "Netlist")
                .unwrap_or(false)
        })
        .expect("expanded Netlist input");
    session
        .specialize(netlist_node, "EditedNetlist")
        .expect("specializes");
    session.bind_latest().expect("binds");

    let report = session.run().expect("runs").clone();
    let out = report.single(layout);
    let data = session
        .db()
        .data_of(out)
        .expect("readable")
        .expect("has data")
        .to_vec();
    let records: Vec<EntityInstance> = session.db().instances().cloned().collect();
    (report.runs(), report.cache_hits(), records, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hit equivalence: over generated input payloads, the warm run
    /// invokes no tools, reports the hit, and leaves a history
    /// byte-identical to the cold run's — every record (entity,
    /// metadata, logical timestamp, blob hash, derivation) matches.
    #[test]
    fn warm_run_is_byte_identical_to_cold(
        kinds in prop::collection::vec(0u8..=7, 1..12),
        row_width in 20i64..200,
        spacing in 1i64..5,
    ) {
        let netlist = netlist_bytes(&kinds);
        let rules = rules_bytes(row_width, spacing);
        let cache = ContentCache::in_memory(
            MemoryBudget::default(),
            Clock::real(),
            Metrics::disabled(),
        );
        let (cold_runs, cold_hits, cold_records, cold_data) =
            run_layout(cache.clone(), &netlist, &rules);
        prop_assert!(cold_runs >= 1, "cold run must invoke the placer");
        prop_assert_eq!(cold_hits, 0);

        let (warm_runs, warm_hits, warm_records, warm_data) =
            run_layout(cache.clone(), &netlist, &rules);
        prop_assert_eq!(warm_runs, 0, "warm run must replay from cache");
        prop_assert!(warm_hits >= 1, "warm run must report the hit");
        prop_assert_eq!(warm_data, cold_data, "layout bytes must match");
        prop_assert_eq!(warm_records, cold_records, "history records must match");
    }

    /// No wrong hits: two runs through one cache with *different*
    /// netlists must not share results — the second run misses, runs
    /// the tool, and its output reflects its own input.
    #[test]
    fn distinct_inputs_never_collide(
        a in prop::collection::vec(0u8..=7, 1..12),
        b in prop::collection::vec(0u8..=7, 1..12),
        row_width in 20i64..200,
        spacing in 1i64..5,
    ) {
        prop_assume!(a != b);
        let net_a = netlist_bytes(&a);
        let net_b = netlist_bytes(&b);
        let rules = rules_bytes(row_width, spacing);
        let cache = ContentCache::in_memory(
            MemoryBudget::default(),
            Clock::real(),
            Metrics::disabled(),
        );
        let (first_runs, _, _, first_data) = run_layout(cache.clone(), &net_a, &rules);
        prop_assert!(first_runs >= 1);
        let (second_runs, second_hits, _, _) =
            run_layout(cache.clone(), &net_b, &rules);
        prop_assert!(second_runs >= 1, "a different netlist must miss");
        prop_assert_eq!(second_hits, 0);
        // Replaying input `a` afterwards still hits its own entry.
        let (third_runs, third_hits, _, third_data) = run_layout(cache, &net_a, &rules);
        prop_assert_eq!(third_runs, 0);
        prop_assert!(third_hits >= 1);
        prop_assert_eq!(third_data, first_data);
    }
}

/// Cross-workspace reuse through the shared disk tier: workspace B
/// opens its *own* cache over the directory workspace A committed to,
/// and replays A's work without running a single tool. The memory
/// tiers share nothing — the hit comes off the disk.
#[test]
fn workspace_b_hits_on_workspace_a_results_via_shared_disk_tier() {
    let sim = SimEnv::new(0xCAC11E);
    let netlist = netlist_bytes(&[0, 2, 4, 6]);
    let rules = rules_bytes(60, 3);

    let cache_a = ContentCache::open(
        &sim.fs(),
        "/shared-cache",
        None,
        CacheConfig::default(),
        sim.clock(),
        Metrics::disabled(),
    )
    .expect("workspace A opens");
    let (a_runs, _, _, a_data) = run_layout(cache_a, &netlist, &rules);
    assert!(a_runs >= 1, "workspace A does the work");

    let cache_b = ContentCache::open(
        &sim.fs(),
        "/shared-cache",
        None,
        CacheConfig::default(),
        sim.clock(),
        Metrics::disabled(),
    )
    .expect("workspace B opens");
    let (b_runs, b_hits, _, b_data) = run_layout(cache_b.clone(), &netlist, &rules);
    assert_eq!(b_runs, 0, "workspace B replays A's committed results");
    assert!(b_hits >= 1);
    assert_eq!(b_data, a_data, "byte-identical across workspaces");
    let stats = cache_b.stats();
    let disk = stats
        .tiers
        .iter()
        .find(|t| t.tier == "disk")
        .expect("disk tier in stats");
    assert!(disk.hits >= 1, "the hit must come off the shared disk tier");
}
