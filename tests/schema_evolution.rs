//! §3.3: "they also make methodology maintenance easier by avoiding the
//! requirement for the maintenance of a set of flows (only the task
//! schema need be maintained), and by simplifying the incorporation of
//! new tools."
//!
//! These tests evolve the schema — add tools, add subtypes — and check
//! that existing histories, catalogs and encapsulations keep working.

use std::sync::Arc;

use hercules::exec::toy;
use hercules::flow::{FlowCatalog, TaskGraph};
use hercules::history::HistorySpec;
use hercules::schema::{fixtures, DepKind, DepSpec, EntitySpec, TaskSchema};

/// Extends the Fig. 1 schema with a new tool: a `FastExtractor`
/// subtype of `Extractor` (a drop-in alternative implementation).
fn fig1_with_fast_extractor() -> TaskSchema {
    let mut spec = fixtures::fig1().to_spec();
    spec.entities.push(EntitySpec {
        name: "FastExtractor".into(),
        kind: None, // inherited from the supertype
        supertype: Some("Extractor".into()),
        description: "drop-in hierarchical extractor".into(),
        composite: false,
    });
    spec.build().expect("extended schema is valid")
}

/// Extends the Fig. 1 schema with a brand-new task: a `Router` tool
/// producing a `RoutedLayout` from a `Layout`. (`Layout` already has
/// its own construction method, so the new product is a sibling entity
/// rather than a subtype — the validator enforces that subtypes are
/// only used to separate construction methods under an *abstract*
/// supertype.)
fn fig1_with_router() -> TaskSchema {
    let mut spec = fixtures::fig1().to_spec();
    spec.entities.push(EntitySpec {
        name: "Router".into(),
        kind: Some(hercules::schema::EntityKind::Tool),
        supertype: None,
        description: String::new(),
        composite: false,
    });
    spec.entities.push(EntitySpec {
        name: "RoutedLayout".into(),
        kind: Some(hercules::schema::EntityKind::Data),
        supertype: None,
        description: String::new(),
        composite: false,
    });
    spec.deps.push(DepSpec {
        target: "RoutedLayout".into(),
        source: "Router".into(),
        kind: DepKind::Functional,
        optional: false,
    });
    spec.deps.push(DepSpec {
        target: "RoutedLayout".into(),
        source: "Layout".into(),
        kind: DepKind::Data,
        optional: false,
    });
    spec.build().expect("extended schema is valid")
}

#[test]
fn histories_survive_schema_extension() {
    // Record work under the original schema...
    let old_schema = Arc::new(fixtures::fig1());
    let mut db = hercules::history::HistoryDb::new(old_schema.clone());
    toy::seed_everything(&mut db, "evolve");
    let saved = HistorySpec::from_db(&db);

    // ...then reload it under the *extended* schema: every name still
    // resolves, derivations replay unchanged.
    let new_schema = Arc::new(fig1_with_router());
    let reloaded = saved.load(new_schema.clone()).expect("replays");
    assert_eq!(reloaded.len(), db.len());

    // And under the much larger Odyssey superset too.
    let odyssey = Arc::new(fixtures::odyssey());
    let reloaded = saved.load(odyssey).expect("replays under superset");
    assert_eq!(reloaded.len(), db.len());
}

#[test]
fn stored_flows_survive_schema_extension() {
    let old_schema = Arc::new(fixtures::fig1());
    let flow = hercules::flow::fixtures::fig5(old_schema.clone()).expect("fixture");
    let mut catalog = FlowCatalog::new();
    catalog.store("fig5", &flow, "complex flow", "evolve");

    // The same stored flow instantiates against the extended schema.
    let new_schema = Arc::new(fig1_with_router());
    let again = catalog
        .instantiate("fig5", new_schema)
        .expect("instantiates");
    assert_eq!(again.len(), flow.len());
}

#[test]
fn new_tool_subtype_inherits_the_family_encapsulation() {
    // Register an encapsulation for `Extractor` only; the new
    // `FastExtractor` subtype finds it through the subtype chain — "the
    // incorporation of new tools" without touching existing glue.
    let schema = fig1_with_fast_extractor();
    let registry = toy::text_registry(&schema);
    let fast = schema.require("FastExtractor").expect("declared");
    assert!(
        registry.lookup(&schema, fast).is_some(),
        "subtype inherits the Extractor encapsulation"
    );
}

#[test]
fn new_task_is_immediately_usable_in_flows() {
    let schema = Arc::new(fig1_with_router());
    let mut flow = TaskGraph::new(schema.clone());
    let routed = flow
        .seed(schema.require("RoutedLayout").expect("declared"))
        .expect("seeds");
    let created = flow.expand(routed).expect("expands");
    assert_eq!(created.len(), 2, "router + layout input");
    // The Layout input expands with the *old* placer task: old and new
    // methodology compose.
    let layout_node = created[1];
    let created = flow.expand(layout_node).expect("expands");
    assert_eq!(created.len(), 3, "placer + netlist + rules");
    flow.validate_for_execution().expect("complete");
}

#[test]
fn removing_an_entity_breaks_loading_loudly() {
    // The converse guarantee: a history that references a removed
    // entity fails to load with a clear error instead of corrupting.
    let old_schema = Arc::new(fixtures::fig1());
    let mut db = hercules::history::HistoryDb::new(old_schema.clone());
    toy::seed_everything(&mut db, "evolve");
    let saved = HistorySpec::from_db(&db);

    let mut spec = fixtures::fig1().to_spec();
    // Remove the plotter (and its dependency arcs).
    spec.entities.retain(|e| e.name != "Plotter");
    spec.deps
        .retain(|d| d.source != "Plotter" && d.target != "Plotter");
    let shrunk = Arc::new(spec.build().expect("still valid"));
    assert!(saved.load(shrunk).is_err(), "missing entity is reported");
}
