//! Experiment E3: the four design approaches (§3.4) — goal-based,
//! tool-based, data-based and plan-based — all reach the same
//! executable simulate task through the same session interface, and
//! produce identical results.

use hercules::{history::Metadata, Approach, Session};

/// Builds the simulate flow goal-first and returns the performance
/// bytes.
fn run_goal_based(session: &mut Session) -> Vec<u8> {
    let perf = session.start_from_goal("Performance").expect("starts");
    finish_simulate_flow(session, perf)
}

/// Common tail: expand the flow around the Performance node `perf`,
/// bind the full-adder script, run, return the performance payload.
fn finish_simulate_flow(session: &mut Session, perf: hercules::flow::NodeId) -> Vec<u8> {
    let created = session.expand(perf).expect("expands");
    let circuit = created[1];
    let created = session.expand(circuit).expect("expands");
    let models = created[0];
    let netlist = created[1];
    session
        .specialize(netlist, "EditedNetlist")
        .expect("subtype");
    session.expand(netlist).expect("expands");
    session.expand(models).expect("expands");

    let editor_node = session
        .flow()
        .expect("flow")
        .tool_of(netlist)
        .expect("tool");
    let script = session
        .browse(editor_node)
        .expect("browses")
        .into_iter()
        .find(|&i| {
            session
                .db()
                .instance(i)
                .map(|x| x.meta().name.contains("Full adder"))
                .unwrap_or(false)
        })
        .expect("seeded script");
    session.select(editor_node, script);
    session.bind_latest().expect("binds");
    session.run().expect("runs");
    let report = session.last_report().expect("ran").clone();
    session
        .db()
        .data_of(report.single(perf))
        .expect("present")
        .expect("data")
        .to_vec()
}

#[test]
fn goal_tool_data_and_plan_based_agree() {
    // Goal-based.
    let mut goal_session = Session::odyssey("jbb");
    let goal_result = run_goal_based(&mut goal_session);

    // Store the goal-based flow for the plan-based designer.
    goal_session
        .store_flow("simulate-adder", "full simulate task")
        .expect("stores");
    let catalog = goal_session.catalog().clone();

    // Tool-based: start from the Simulator, expand downward to the
    // Performance it produces.
    let mut tool_session = Session::odyssey("jbb");
    let sim_node = tool_session.start_from_tool("Simulator").expect("starts");
    let (perf_node, _) = tool_session
        .expand_down(sim_node, "Performance")
        .expect("expands down");
    let tool_result = finish_continue(&mut tool_session, perf_node);
    assert_eq!(goal_result, tool_result, "tool-based result identical");

    // Data-based: start from an existing stimuli instance and expand
    // downward to the Performance that consumes it.
    let mut data_session = Session::odyssey("jbb");
    let stimuli_entity = data_session.schema().require("Stimuli").expect("known");
    let stim = data_session
        .db()
        .latest_of_family(stimuli_entity)
        .expect("seeded");
    let stim_node = data_session.start_from_data(stim).expect("starts");
    let (perf_node, _) = data_session
        .expand_down(stim_node, "Performance")
        .expect("expands down");
    let data_result = finish_continue(&mut data_session, perf_node);
    assert_eq!(goal_result, data_result, "data-based result identical");

    // Plan-based: replay the stored flow in a fresh session.
    let mut plan_session = Session::odyssey("jbb");
    *plan_session.catalog_mut() = catalog;
    let perf_node = plan_session
        .start_from_plan("simulate-adder")
        .expect("instantiates");
    // The stored flow is already fully expanded; just bind and run.
    let editor_entity = plan_session
        .schema()
        .require("CircuitEditor")
        .expect("known");
    let script = plan_session
        .db()
        .instances_of(editor_entity)
        .into_iter()
        .find(|&i| {
            plan_session
                .db()
                .instance(i)
                .map(|x| x.meta().name.contains("Full adder"))
                .unwrap_or(false)
        })
        .expect("seeded script");
    let flow = plan_session.flow().expect("instantiated").clone();
    let editor_node = flow
        .leaves()
        .into_iter()
        .find(|&l| {
            flow.entity_of(l)
                .map(|e| e == editor_entity)
                .unwrap_or(false)
        })
        .expect("editor leaf");
    plan_session.select(editor_node, script);
    plan_session.bind_latest().expect("binds");
    plan_session.run().expect("runs");
    let report = plan_session.last_report().expect("ran").clone();
    let plan_result = plan_session
        .db()
        .data_of(report.single(perf_node))
        .expect("present")
        .expect("data")
        .to_vec();
    assert_eq!(goal_result, plan_result, "plan-based result identical");
}

/// Tail for sessions whose Performance node came from downward
/// expansion (its circuit/stimuli inputs were created by expand_down).
fn finish_continue(session: &mut Session, perf: hercules::flow::NodeId) -> Vec<u8> {
    let inputs = session.flow().expect("flow").data_inputs_of(perf);
    let schema = session.schema().clone();
    let circuit = inputs
        .into_iter()
        .find(|&n| {
            session
                .flow()
                .expect("flow")
                .entity_of(n)
                .map(|e| schema.entity(e).name() == "Circuit")
                .unwrap_or(false)
        })
        .expect("circuit input");
    let created = session.expand(circuit).expect("expands");
    let models = created[0];
    let netlist = created[1];
    session
        .specialize(netlist, "EditedNetlist")
        .expect("subtype");
    session.expand(netlist).expect("expands");
    session.expand(models).expect("expands");

    let editor_node = session
        .flow()
        .expect("flow")
        .tool_of(netlist)
        .expect("tool");
    let script = session
        .browse(editor_node)
        .expect("browses")
        .into_iter()
        .find(|&i| {
            session
                .db()
                .instance(i)
                .map(|x| x.meta().name.contains("Full adder"))
                .unwrap_or(false)
        })
        .expect("seeded script");
    session.select(editor_node, script);
    session.bind_latest().expect("binds");
    session.run().expect("runs");
    let report = session.last_report().expect("ran").clone();
    session
        .db()
        .data_of(report.single(perf))
        .expect("present")
        .expect("data")
        .to_vec()
}

#[test]
fn approach_enum_drives_the_same_entry_points() {
    let mut session = Session::odyssey("jbb");
    let node = session
        .start(Approach::Goal("Layout".into()))
        .expect("starts");
    assert_eq!(
        session
            .schema()
            .entity(session.flow().expect("flow").entity_of(node).expect("live"))
            .name(),
        "Layout"
    );

    // Data-based via the enum.
    let mut session = Session::odyssey("jbb");
    let stim = session
        .db()
        .latest_of_family(session.schema().require("Stimuli").expect("known"))
        .expect("seeded");
    let node = session.start(Approach::Data(stim)).expect("starts");
    assert_eq!(session.binding().get(node), &[stim], "bound on start");
    let _ = Metadata::by("unused");
}
